package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"mcmgpu/internal/extsort"
	"mcmgpu/internal/metricstream"
)

// chunkSize is the fixed parallel work grid: every regular-file input is
// cut into chunkSize spans at byte boundaries. The grid depends only on
// file sizes — never on -j — so the set of (chunk, line) assignments is
// identical for any worker count; only which worker handles a chunk varies,
// and all aggregate merges are commutative.
const chunkSize = 1 << 20

// maxLine bounds a single record line during chunk extension.
const maxLine = 256 << 20

// fileBaseShift positions the input index in the high tag bits: each input
// gets 2^44 (16 TiB) of offset space, far beyond any stream.
const fileBaseShift = 44

// input is one opened metrics stream.
type input struct {
	path   string
	f      *os.File
	size   int64
	format metricstream.Format
	seq    bool   // gzip or non-seekable: must scan sequentially
	base   uint64 // tag base: inputIndex << fileBaseShift
}

// chunk is one unit of parallel work.
type chunk struct {
	in         *input
	start, end int64
}

// recordFilter selects which record types aggregate.
type recordFilter int8

const (
	recSamples recordFilter = iota
	recKernels
	recBoth
)

func (f recordFilter) keep(t metricstream.RecordType) bool {
	switch f {
	case recSamples:
		return t == metricstream.TypeSample
	case recKernels:
		return t == metricstream.TypeKernel
	}
	return true
}

// spiller serializes table flushes into one shared external sorter. A nil
// spiller means spilling is forbidden (-q p2).
type spiller struct {
	mu     sync.Mutex
	sorter *extsort.Sorter
	used   bool
}

// spillCompare orders spilled (uvarint keyLen | key | state) records by
// key bytes; equal keys are merged downstream, so their relative order is
// irrelevant (and stable anyway).
func spillCompare(a, b []byte) int {
	ka, na := binary.Uvarint(a)
	kb, nb := binary.Uvarint(b)
	return bytes.Compare(a[na:na+int(ka)], b[nb:nb+int(kb)])
}

// flush serializes every table entry into the shared sorter and resets the
// table.
func (sp *spiller) flush(t *table, scratch []byte) ([]byte, error) {
	if sp == nil {
		return scratch, fmt.Errorf("mcmstat: group table exceeds -mem and -q p2 cannot spill (P² state is order-dependent); raise -mem or use -q sample")
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.used = true
	for i := range t.entries {
		e := &t.entries[i]
		key := t.key(e)
		scratch = scratch[:0]
		scratch = binary.AppendUvarint(scratch, uint64(len(key)))
		scratch = append(scratch, key...)
		scratch = e.agg.appendState(scratch, t.mode)
		if err := sp.sorter.Add(scratch); err != nil {
			return scratch, err
		}
	}
	t.reset()
	return scratch, nil
}

// aggCtx is one scanning context (one per worker, plus one for sequential
// inputs): a reused Record, the group table, and key scratch.
type aggCtx struct {
	dims    []int
	filter  recordFilter
	tbl     *table
	budget  int // flush threshold for tbl.bytes
	sp      *spiller
	rec     metricstream.Record
	prefix  []byte // record-level dims, rebuilt per record
	keyBuf  []byte
	spillSc []byte
	rows    int64 // observations aggregated
	readBuf []byte
}

func newAggCtx(dims []int, filter recordFilter, mode aggMode, k, budget int, sp *spiller) *aggCtx {
	return &aggCtx{
		dims:   dims,
		filter: filter,
		tbl:    newTable(mode, k),
		budget: budget,
		sp:     sp,
	}
}

func hitrate(hits, misses uint64) float64 {
	total := hits + misses
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// record aggregates every flat row of one parsed record. lineOff is the
// line's byte offset in the (decompressed) input; base the input's tag
// base. Together they give each observation its unique deterministic tag —
// sub-indexes stay below the line length, so tags never collide.
func (c *aggCtx) record(rec *metricstream.Record, lineOff int64, base uint64) error {
	if !c.filter.keep(rec.Type) {
		return nil
	}
	c.prefix = c.prefix[:0]
	rowDims := c.dims
	for len(rowDims) > 0 {
		switch rowDims[0] {
		case dimConfig:
			c.prefix = append(c.prefix, rec.Config...)
		case dimWorkload:
			c.prefix = append(c.prefix, rec.Workload...)
		case dimKernel:
			c.prefix = appendPadded(c.prefix, rec.Kernel)
		default:
			goto rowLevel
		}
		c.prefix = append(c.prefix, keySep)
		rowDims = rowDims[1:]
	}
rowLevel:
	sub := uint64(0)
	for i := range rec.Resources {
		r := &rec.Resources[i]
		key := append(c.keyBuf[:0], c.prefix...)
		for _, d := range rowDims {
			switch d {
			case dimGPM:
				key = appendPadded(key, r.GPM)
			case dimKind:
				key = append(key, r.Kind...)
			case dimName:
				key = append(key, r.Name...)
			}
			key = append(key, keySep)
		}
		key = append(key, metricUtil)
		c.keyBuf = key[:0]
		c.tbl.add(key, observation{
			tag:   base | (uint64(lineOff) + sub),
			v:     r.Util,
			busy:  r.Busy,
			units: r.Units,
		})
		sub++
	}
	for i := range rec.Caches {
		cc := &rec.Caches[i]
		key := append(c.keyBuf[:0], c.prefix...)
		for _, d := range rowDims {
			switch d {
			case dimGPM:
				key = appendPadded(key, cc.GPM)
			case dimKind:
				key = append(key, "cache"...)
			case dimName:
				key = append(key, cc.Level...)
			}
			key = append(key, keySep)
		}
		key = append(key, metricHitrate)
		c.keyBuf = key[:0]
		c.tbl.add(key, observation{
			tag:    base | (uint64(lineOff) + sub),
			v:      hitrate(cc.Hits, cc.Misses),
			hits:   cc.Hits,
			misses: cc.Misses,
		})
		sub++
	}
	c.rows += int64(len(rec.Resources) + len(rec.Caches))
	if c.tbl.bytes > c.budget {
		var err error
		c.spillSc, err = c.sp.flush(c.tbl, c.spillSc)
		if err != nil {
			return err
		}
	}
	return nil
}

// line parses and aggregates one raw line in the given format.
func (c *aggCtx) line(line []byte, format metricstream.Format, lineOff int64, base uint64) error {
	if len(line) == 0 {
		return nil
	}
	if format == metricstream.FormatCSV {
		if bytes.HasPrefix(line, []byte("type,")) {
			return nil // header
		}
		if err := c.rec.ParseCSV(line); err != nil {
			return fmt.Errorf("offset %d: %w", lineOff, err)
		}
	} else {
		if err := c.rec.ParseNDJSON(line); err != nil {
			return fmt.Errorf("offset %d: %w", lineOff, err)
		}
	}
	return c.record(&c.rec, lineOff, base)
}

// processChunk aggregates every line whose first byte lies in [start, end).
// A line that straddles end is completed by extending the read; a line that
// straddles start belongs to the previous chunk and is skipped.
func (c *aggCtx) processChunk(ch chunk) error {
	rdStart := ch.start
	if rdStart > 0 {
		rdStart-- // read one extra byte to learn whether start is a line start
	}
	need := int(ch.end - rdStart)
	if cap(c.readBuf) < need {
		c.readBuf = make([]byte, need+chunkSize)
	}
	buf := c.readBuf[:need]
	n, err := ch.in.f.ReadAt(buf, rdStart)
	if err != nil && err != io.EOF {
		return fmt.Errorf("%s: %w", ch.in.path, err)
	}
	buf = buf[:n]
	atEOF := n < need

	pos := 0
	if ch.start > 0 {
		if len(buf) == 0 {
			return nil
		}
		if buf[0] == '\n' {
			pos = 1
		} else {
			j := bytes.IndexByte(buf, '\n')
			if j < 0 {
				return nil // chunk is the interior of one long line
			}
			pos = j + 1
		}
	}
	for pos < len(buf) {
		lineStart := rdStart + int64(pos)
		if lineStart >= ch.end {
			break
		}
		j := bytes.IndexByte(buf[pos:], '\n')
		for j < 0 && !atEOF {
			if buf, atEOF, err = extendRead(ch.in, rdStart, buf); err != nil {
				return err
			}
			if len(buf)-pos > maxLine {
				return fmt.Errorf("%s: line at offset %d exceeds %d bytes", ch.in.path, lineStart, maxLine)
			}
			j = bytes.IndexByte(buf[pos:], '\n')
		}
		var line []byte
		if j < 0 { // final unterminated line
			line = buf[pos:]
			pos = len(buf)
		} else {
			line = buf[pos : pos+j]
			pos += j + 1
		}
		if err := c.line(line, ch.in.format, lineStart, ch.in.base); err != nil {
			return fmt.Errorf("%s: %w", ch.in.path, err)
		}
	}
	if cap(buf) > cap(c.readBuf) {
		c.readBuf = buf
	}
	return nil
}

// extendRead grows buf with the next span of the file, reporting EOF.
func extendRead(in *input, rdStart int64, buf []byte) ([]byte, bool, error) {
	off := rdStart + int64(len(buf))
	old := len(buf)
	buf = append(buf, make([]byte, chunkSize)...)
	n, err := in.f.ReadAt(buf[old:], off)
	buf = buf[:old+n]
	if err == io.EOF {
		return buf, true, nil
	}
	if err != nil {
		return buf, false, fmt.Errorf("%s: %w", in.path, err)
	}
	return buf, n == 0, nil
}

// processSequential scans a non-seekable input (gzip, stdin) through the
// stream Scanner. Offsets are decompressed-stream line starts, so a
// gzipped file aggregates identically to its plain twin.
func (c *aggCtx) processSequential(in *input) (int64, error) {
	sc, err := metricstream.NewScanner(in.f, in.format)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", in.path, err)
	}
	var last int64
	for sc.Scan() {
		last = sc.Offset()
		if err := c.record(sc.Record(), sc.Offset(), in.base); err != nil {
			return last, fmt.Errorf("%s: %w", in.path, err)
		}
	}
	if sc.Err() != nil {
		return last, fmt.Errorf("%s: %w", in.path, sc.Err())
	}
	return last, nil
}
