package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"mcmgpu/internal/metricstream"
)

// benchLines loads a generated stream and splits it into lines for the
// hot-path benchmark and allocation test.
func benchLines(t testing.TB, csv bool) ([][]byte, int64) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.stream")
	genStream(t, path, csv, 6, 120)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var lines [][]byte
	for _, l := range bytes.Split(raw, []byte("\n")) {
		if len(l) > 0 {
			lines = append(lines, l)
		}
	}
	return lines, int64(len(raw))
}

// TestScanAggregateAllocs pins the steady-state hot path — parse + key
// build + open-addressing aggregate — at ~0 allocations per line.
func TestScanAggregateAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		csv  bool
	}{{"ndjson", false}, {"csv", true}} {
		t.Run(tc.name, func(t *testing.T) {
			lines, _ := benchLines(t, tc.csv)
			format := metricstream.FormatNDJSON
			if tc.csv {
				format = metricstream.FormatCSV
			}
			dims := []int{dimConfig, dimWorkload, dimKind, dimName}
			c := newAggCtx(dims, recBoth, modeReservoir, 64, 1<<40, nil)
			feed := func(n int) {
				off := int64(0)
				for i := 0; i < n; i++ {
					l := lines[i%len(lines)]
					if err := c.line(l, format, off, 0); err != nil {
						t.Fatal(err)
					}
					off += int64(len(l)) + 1
				}
			}
			feed(4 * len(lines)) // warm: tables grown, reservoirs filled
			per := testing.AllocsPerRun(200, func() { feed(len(lines)) })
			perLine := per / float64(len(lines))
			if perLine > 0.05 {
				t.Fatalf("aggregate path allocates %.3f allocs/line (want ~0)", perLine)
			}
		})
	}
}

// BenchmarkScanAggregate measures single-context aggregation throughput in
// flat rows per second (the ISSUE gate tracks this on a 1M-row stream in CI).
func BenchmarkScanAggregate(b *testing.B) {
	for _, tc := range []struct {
		name string
		csv  bool
	}{{"ndjson", false}, {"csv", true}} {
		b.Run(tc.name, func(b *testing.B) {
			lines, size := benchLines(b, tc.csv)
			format := metricstream.FormatNDJSON
			if tc.csv {
				format = metricstream.FormatCSV
			}
			dims := []int{dimConfig, dimWorkload, dimKind, dimName}
			c := newAggCtx(dims, recBoth, modeReservoir, 4096, 1<<40, nil)
			b.SetBytes(size / int64(len(lines)))
			b.ResetTimer()
			off := int64(0)
			for i := 0; i < b.N; i++ {
				l := lines[i%len(lines)]
				if err := c.line(l, format, off, 0); err != nil {
					b.Fatal(err)
				}
				off += int64(len(l)) + 1
			}
			b.StopTimer()
			rows := float64(c.rows)
			if rows > 0 {
				b.ReportMetric(rows/b.Elapsed().Seconds(), "rows/s")
			}
		})
	}
}
