package main

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strconv"

	"mcmgpu/internal/stats"
)

// Group dimensions, in canonical key order. The -group flag selects a
// subset; the key encoder always emits selected dims in this order so the
// encoded-key byte order is the output order.
const (
	dimConfig = iota
	dimWorkload
	dimKernel
	dimGPM
	dimKind
	dimName
	numDims
)

var dimNames = [numDims]string{"config", "workload", "kernel", "gpm", "kind", "name"}

// keySep separates dimension values inside an encoded group key. Dimension
// values containing 0x1f are unsupported (DESIGN.md §9).
const keySep = 0x1f

// Metric tags, the last key byte. 'h' sorts before 'u', so within one
// dimension tuple hitrate rows precede util rows — in both the fast and
// naive paths, since both order by encoded key bytes.
const (
	metricHitrate = 'h'
	metricUtil    = 'u'
)

func metricName(tag byte) string {
	if tag == metricHitrate {
		return "hitrate"
	}
	return "util"
}

// numPad is the zero-padded width numeric dimensions (kernel, gpm) are
// encoded with, so byte order equals numeric order. Display strips the
// padding.
const numPad = 12

// appendPadded appends v zero-padded to numPad digits.
func appendPadded(dst []byte, v int) []byte {
	if v < 0 {
		// Negative ids never occur in real streams; encode textually so the
		// key still round-trips.
		return strconv.AppendInt(dst, int64(v), 10)
	}
	var tmp [numPad]byte
	for i := numPad - 1; i >= 0; i-- {
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(dst, tmp[:]...)
}

// unpad strips the zero padding for display.
func unpad(b []byte) []byte {
	i := 0
	for i < len(b)-1 && b[i] == '0' {
		i++
	}
	return b[i:]
}

// aggMode selects how quantiles are tracked.
type aggMode int8

const (
	modeReservoir aggMode = iota // deterministic sample, the default
	modeExact                    // keep every value, exact quantiles
	modeP2                       // P² estimators: sequential only, no spill
)

// groupAgg is the per-group aggregate state. Every merge operation is
// commutative and exact (ExactSum, deterministic reservoir, min/max,
// integer sums), which is what makes output byte-identical across worker
// counts and spill partitionings.
type groupAgg struct {
	n          uint64
	min, max   float64
	sum        stats.ExactSum // of the metric value
	sumBusy    stats.ExactSum
	units      uint64
	hits       uint64
	misses     uint64
	rsv        *stats.Reservoir
	exact      []float64
	p95e, p99e *stats.P2
}

// observation is one flat row's contribution.
type observation struct {
	tag    uint64 // unique per observation: file base | line offset + sub-index
	v      float64
	busy   float64
	units  uint64
	hits   uint64
	misses uint64
}

// add folds one observation in. Returns the estimated heap growth in bytes
// (for the -mem accounting).
func (g *groupAgg) add(mode aggMode, k int, o observation) int {
	grew := 0
	if g.n == 0 {
		g.min, g.max = o.v, o.v
		switch mode {
		case modeReservoir:
			g.rsv = stats.NewReservoir(k)
			grew += 64
		case modeP2:
			g.p95e, g.p99e = stats.NewP2(0.95), stats.NewP2(0.99)
			grew += 256
		}
	} else {
		if o.v < g.min {
			g.min = o.v
		}
		if o.v > g.max {
			g.max = o.v
		}
	}
	g.n++
	g.sum.Add(o.v)
	g.sumBusy.Add(o.busy)
	g.units += o.units
	g.hits += o.hits
	g.misses += o.misses
	switch mode {
	case modeReservoir:
		if g.rsv.Len() < k {
			grew += 24
		}
		g.rsv.Add(o.tag, o.v)
	case modeExact:
		g.exact = append(g.exact, o.v)
		grew += 8
	case modeP2:
		g.p95e.Add(o.v)
		g.p99e.Add(o.v)
	}
	return grew
}

// merge folds o into g. P² state cannot merge (it is order-dependent);
// callers guarantee mode != modeP2 on any merging path.
func (g *groupAgg) merge(mode aggMode, o *groupAgg) {
	if o.n == 0 {
		return
	}
	if g.n == 0 {
		g.min, g.max = o.min, o.max
	} else {
		if o.min < g.min {
			g.min = o.min
		}
		if o.max > g.max {
			g.max = o.max
		}
	}
	g.n += o.n
	g.sum.Merge(&o.sum)
	g.sumBusy.Merge(&o.sumBusy)
	g.units += o.units
	g.hits += o.hits
	g.misses += o.misses
	switch mode {
	case modeReservoir:
		if g.rsv == nil {
			g.rsv = o.rsv
		} else {
			g.rsv.Merge(o.rsv)
		}
	case modeExact:
		g.exact = append(g.exact, o.exact...)
	}
}

// quantiles returns (p95, p99) plus the scratch slice for reuse.
func (g *groupAgg) quantiles(mode aggMode, scratch []float64) (float64, float64, []float64) {
	switch mode {
	case modeP2:
		return g.p95e.Value(), g.p99e.Value(), scratch
	case modeExact:
		sort.Float64s(g.exact)
		return stats.Quantile(g.exact, 0.95), stats.Quantile(g.exact, 0.99), scratch
	default:
		scratch = g.rsv.Values(scratch[:0])
		return stats.Quantile(scratch, 0.95), stats.Quantile(scratch, 0.99), scratch
	}
}

// appendState serializes the aggregate (everything after the key) for the
// external-sort spill path.
func (g *groupAgg) appendState(dst []byte, mode aggMode) []byte {
	dst = binary.AppendUvarint(dst, g.n)
	dst = appendF64(dst, g.min)
	dst = appendF64(dst, g.max)
	dst = appendF64s(dst, g.sum.Parts())
	dst = appendF64s(dst, g.sumBusy.Parts())
	dst = binary.AppendUvarint(dst, g.units)
	dst = binary.AppendUvarint(dst, g.hits)
	dst = binary.AppendUvarint(dst, g.misses)
	switch mode {
	case modeReservoir:
		dst = binary.AppendUvarint(dst, uint64(g.rsv.Len()))
		g.rsv.Each(func(tag uint64, v float64) {
			dst = binary.AppendUvarint(dst, tag)
			dst = appendF64(dst, v)
		})
	case modeExact:
		dst = binary.AppendUvarint(dst, uint64(len(g.exact)))
		for _, v := range g.exact {
			dst = appendF64(dst, v)
		}
	}
	return dst
}

// parseState deserializes an aggregate produced by appendState into a fresh
// groupAgg.
func parseState(b []byte, mode aggMode, k int, g *groupAgg) error {
	*g = groupAgg{}
	var err error
	if g.n, b, err = takeUvarint(b); err != nil {
		return err
	}
	if g.min, b, err = takeF64(b); err != nil {
		return err
	}
	if g.max, b, err = takeF64(b); err != nil {
		return err
	}
	if b, err = takeF64s(b, &g.sum); err != nil {
		return err
	}
	if b, err = takeF64s(b, &g.sumBusy); err != nil {
		return err
	}
	if g.units, b, err = takeUvarint(b); err != nil {
		return err
	}
	if g.hits, b, err = takeUvarint(b); err != nil {
		return err
	}
	if g.misses, b, err = takeUvarint(b); err != nil {
		return err
	}
	switch mode {
	case modeReservoir:
		var cnt uint64
		if cnt, b, err = takeUvarint(b); err != nil {
			return err
		}
		g.rsv = stats.NewReservoir(k)
		for i := uint64(0); i < cnt; i++ {
			var tag uint64
			var v float64
			if tag, b, err = takeUvarint(b); err != nil {
				return err
			}
			if v, b, err = takeF64(b); err != nil {
				return err
			}
			g.rsv.Add(tag, v)
		}
	case modeExact:
		var cnt uint64
		if cnt, b, err = takeUvarint(b); err != nil {
			return err
		}
		g.exact = make([]float64, 0, cnt)
		for i := uint64(0); i < cnt; i++ {
			var v float64
			if v, b, err = takeF64(b); err != nil {
				return err
			}
			g.exact = append(g.exact, v)
		}
	}
	if len(b) != 0 {
		return fmt.Errorf("mcmstat: %d trailing bytes in spilled aggregate", len(b))
	}
	return nil
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func appendF64s(dst []byte, vs []float64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = appendF64(dst, v)
	}
	return dst
}

func takeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("mcmstat: corrupt spilled aggregate (uvarint)")
	}
	return v, b[n:], nil
}

func takeF64(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("mcmstat: corrupt spilled aggregate (f64)")
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], nil
}

// takeF64s reads a float list, Add-ing each into sum (reconstructing the
// exact expansion).
func takeF64s(b []byte, sum *stats.ExactSum) ([]byte, error) {
	cnt, b, err := takeUvarint(b)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < cnt; i++ {
		var v float64
		if v, b, err = takeF64(b); err != nil {
			return nil, err
		}
		sum.Add(v)
	}
	return b, nil
}

// table is an open-addressing hash table from encoded group key to
// aggregate, tuned for the allocation-free hot path: keys live in one
// arena, slots hold indexes, lookups never allocate.
type table struct {
	mode aggMode
	k    int

	slots   []int32 // entry index + 1; 0 = empty
	hashes  []uint64
	entries []tEntry
	arena   []byte

	bytes int // estimated heap footprint for the -mem accounting
}

type tEntry struct {
	keyOff, keyLen uint32
	hash           uint64
	agg            groupAgg
}

func newTable(mode aggMode, k int) *table {
	return &table{mode: mode, k: k, slots: make([]int32, 1024)}
}

func (t *table) key(e *tEntry) []byte {
	return t.arena[e.keyOff : e.keyOff+uint32(e.keyLen)]
}

// fnv1a hashes the key bytes.
func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// add folds one observation into the group keyed by key.
func (t *table) add(key []byte, o observation) {
	h := fnv1a(key)
	mask := uint64(len(t.slots) - 1)
	i := h & mask
	for {
		s := t.slots[i]
		if s == 0 {
			t.insert(i, h, key, o)
			return
		}
		e := &t.entries[s-1]
		if e.hash == h && string(t.key(e)) == string(key) {
			t.bytes += e.agg.add(t.mode, t.k, o)
			return
		}
		i = (i + 1) & mask
	}
}

func (t *table) insert(slot uint64, h uint64, key []byte, o observation) {
	t.entries = append(t.entries, tEntry{
		keyOff: uint32(len(t.arena)),
		keyLen: uint32(len(key)),
		hash:   h,
	})
	t.arena = append(t.arena, key...)
	t.slots[slot] = int32(len(t.entries))
	e := &t.entries[len(t.entries)-1]
	t.bytes += len(key) + 160 // entry + slot overhead estimate
	t.bytes += e.agg.add(t.mode, t.k, o)
	if len(t.entries)*4 >= len(t.slots)*3 {
		t.grow()
	}
}

func (t *table) grow() {
	slots := make([]int32, len(t.slots)*2)
	mask := uint64(len(slots) - 1)
	for idx := range t.entries {
		i := t.entries[idx].hash & mask
		for slots[i] != 0 {
			i = (i + 1) & mask
		}
		slots[i] = int32(idx + 1)
	}
	t.slots = slots
}

// reset empties the table, keeping capacity.
func (t *table) reset() {
	for i := range t.slots {
		t.slots[i] = 0
	}
	t.entries = t.entries[:0]
	t.arena = t.arena[:0]
	t.bytes = 0
}
