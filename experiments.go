package mcmgpu

import (
	"fmt"
	"sort"
	"time"

	"mcmgpu/internal/config"
	"mcmgpu/internal/energy"
	"mcmgpu/internal/faultinject"
	"mcmgpu/internal/report"
	"mcmgpu/internal/stats"
	"mcmgpu/internal/workload"
)

// Options controls how much work the experiment drivers simulate.
type Options struct {
	// Scale multiplies per-warp work and footprints (default 1, full size).
	// Benchmarks use smaller scales; headline ratios are stable down to
	// about 0.25.
	Scale float64
	// MaxPerCategory, when positive, trims the suite to the first N
	// workloads of each category for quick runs.
	MaxPerCategory int
	// Workers is the simulation-job parallelism (0 = GOMAXPROCS, 1 =
	// sequential). Parallel runs produce byte-identical tables; see
	// internal/runner for the determinism contract.
	Workers int
	// NoCache bypasses the process-wide run cache, forcing every suite to
	// simulate from scratch. Benchmarks measuring raw simulator speed set
	// this; experiment drivers leave it off so repeated reference suites
	// (the baseline MCM, the 6 TB/s link, the monolithic bounds) are
	// simulated once per process.
	NoCache bool

	// MaxEvents and MaxCycles bound every simulation job (0 = no limit);
	// a job exceeding its budget fails with a *SimError instead of hanging.
	MaxEvents uint64
	MaxCycles uint64
	// Deadline, when non-zero, is the wall-clock instant after which
	// running jobs are terminated with a *SimError. The CLIs derive it once
	// from -timeout so one deadline bounds the whole invocation.
	Deadline time.Time
	// KeepGoing switches the runner from fail-fast to collect-errors mode:
	// a failed (config, workload) cell is reported through Warnf and
	// rendered as ERR in the tables instead of aborting the experiment.
	KeepGoing bool
	// Fault is a deterministic fault-injection plan applied to matching
	// jobs; the zero value injects nothing. CLIs arm it from MCMGPU_FAULT.
	Fault faultinject.Plan
	// Audit enables the invariant auditor on every job: conservation laws
	// are checked at kernel boundaries (and periodically) and a violation
	// fails the job with a *SimError wrapping the structured violations.
	// Auditing only observes, so audited tables are byte-identical to
	// unaudited ones. CLIs arm it from -audit; MCMGPU_AUDIT=1 forces it on
	// regardless of this field.
	Audit bool
	// Warnf, when non-nil, receives diagnostics that must not pollute the
	// table output: failed cells in KeepGoing mode and non-zero
	// ClampedEvents counts. The CLIs route it to stderr.
	Warnf func(format string, args ...interface{})
	// Metrics, when non-nil with a writer, attaches the time-series sampler
	// to every simulation job and streams the per-job records (NDJSON or
	// CSV) to Metrics.W in job order. Sampling only observes: tables are
	// byte-identical with and without it. Jobs satisfied from the run cache
	// emit nothing (their stream was written when the entry was populated),
	// so pair Metrics with NoCache to re-stream previously cached suites.
	// CLIs arm it from -metrics / -metrics-interval.
	Metrics *MetricsOptions
	// Store, when non-nil, adds a durable content-addressed tier under the
	// run cache: warm cells are served from disk (metrics streams replayed)
	// and fresh results persisted, so identical work is simulated at most
	// once across processes. Store failures degrade to compute — an
	// unreadable entry is recomputed, never an error. CLIs arm it from
	// -store DIR; see OpenRunStore.
	Store *RunStore
}

// warnf emits a diagnostic when a sink is configured.
func (o Options) warnf(format string, args ...interface{}) {
	if o.Warnf != nil {
		o.Warnf(format, args...)
	}
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 1
	}
	return o.Scale
}

func (o Options) suite() []*Spec {
	if o.MaxPerCategory <= 0 {
		return workload.Suite()
	}
	var out []*Spec
	for _, cat := range []workload.Category{MemoryIntensive, ComputeIntensive, LimitedParallelism} {
		specs := workload.ByCategory(cat)
		n := o.MaxPerCategory
		if n > len(specs) {
			n = len(specs)
		}
		out = append(out, specs[:n]...)
	}
	return out
}

func (o Options) mIntensive() []*Spec {
	var out []*Spec
	for _, s := range o.suite() {
		if s.Category == MemoryIntensive {
			out = append(out, s)
		}
	}
	return out
}

// geomeanSpeedup aggregates sys-over-base speedups for the given specs.
// Workloads missing from either set (failed cells in KeepGoing mode) are
// skipped; if nothing survives, or a speedup is non-positive, an error is
// returned for the caller to render (typically via report.Cell).
func geomeanSpeedup(base, sys resultSet, specs []*Spec) (float64, error) {
	var xs []float64
	for _, s := range specs {
		b, ok1 := base[s.Name]
		r, ok2 := sys[s.Name]
		if ok1 && ok2 {
			xs = append(xs, r.SpeedupOver(b))
		}
	}
	if len(xs) == 0 && len(specs) > 0 {
		return 0, fmt.Errorf("geomean speedup: no surviving results for any of %d workloads", len(specs))
	}
	return stats.GeoMean(xs)
}

// speedupCell renders one per-app speedup, degrading to ERR when either run
// is missing from its result set.
func speedupCell(base, sys resultSet, name string) interface{} {
	b, ok1 := base[name]
	r, ok2 := sys[name]
	if !ok1 || !ok2 {
		return report.ErrCell
	}
	return r.SpeedupOver(b)
}

// gbpsCell renders one per-app inter-module bandwidth, degrading to ERR when
// the run is missing from its result set.
func gbpsCell(rs resultSet, name string) interface{} {
	r, ok := rs[name]
	if !ok {
		return report.ErrCell
	}
	return r.InterModuleGBps
}

// byCategory partitions specs.
func byCategory(specs []*Spec, c workload.Category) []*Spec {
	var out []*Spec
	for _, s := range specs {
		if s.Category == c {
			out = append(out, s)
		}
	}
	return out
}

// meanInterGPM returns the mean inter-module bandwidth in GB/s across specs.
func meanInterGPM(rs resultSet, specs []*Spec) float64 {
	var xs []float64
	for _, s := range specs {
		if r, ok := rs[s.Name]; ok {
			xs = append(xs, r.InterModuleGBps)
		}
	}
	return stats.Mean(xs)
}

// Table1 renders the paper's Table 1: key characteristics of recent NVIDIA
// GPUs (static published data).
func Table1() *Table {
	t := report.New("Table 1: Key characteristics of recent NVIDIA GPUs",
		"GPU", "SMs", "BW (GB/s)", "L2 (KB)", "Transistors (B)", "Tech node (nm)", "Chip size (mm2)")
	t.AddRow("Fermi", "16", "177", "768", "3.0", "40", "529")
	t.AddRow("Kepler", "15", "288", "1536", "7.1", "28", "551")
	t.AddRow("Maxwell", "24", "288", "3072", "8.0", "28", "601")
	t.AddRow("Pascal", "56", "720", "4096", "15.3", "16", "610")
	return t
}

// Table2 renders the paper's Table 2: bandwidth and energy per integration
// domain, as used by the simulator's energy meter.
func Table2() *Table {
	t := report.New("Table 2: Approximate bandwidth and energy parameters for integration domains",
		"Domain", "BW", "Energy (pJ/bit)", "Overhead")
	rows := []struct {
		d        energy.Domain
		bw, over string
	}{
		{energy.DomainChip, "10s TB/s", "Low"},
		{energy.DomainPackage, "1.5 TB/s", "Medium"},
		{energy.DomainBoard, "256 GB/s", "High"},
		{energy.DomainSystem, "12.5 GB/s", "Very High"},
	}
	for _, r := range rows {
		t.AddRowF(r.d.String(), r.bw, r.d.PJPerBit(), r.over)
	}
	return t
}

// Table3 renders the baseline MCM-GPU configuration actually used by the
// simulator (the paper's Table 3).
func Table3() *Table {
	c := config.BaselineMCM()
	t := report.New("Table 3: Baseline MCM-GPU configuration", "Parameter", "Value")
	t.AddRow("Number of GPMs", fmt.Sprint(c.Modules))
	t.AddRow("Total number of SMs", fmt.Sprint(c.TotalSMs()))
	t.AddRow("GPU frequency", "1 GHz")
	t.AddRow("Max warps per SM", fmt.Sprint(c.WarpsPerSM))
	t.AddRow("L1 data cache", fmt.Sprintf("%d KB per SM, %dB lines, %d ways", c.L1.SizeBytes/config.KB, c.L1.LineBytes, c.L1.Ways))
	t.AddRow("Total L2 cache", fmt.Sprintf("%d MB, %dB lines, %d ways", c.TotalL2Bytes()/config.MB, c.L2.LineBytes, c.L2.Ways))
	t.AddRow("Inter-GPM interconnect", fmt.Sprintf("%.0f GB/s per link, %v, %d cycles/hop", c.Link.GBps, c.Topology, c.Link.HopLatency))
	t.AddRow("Total DRAM bandwidth", fmt.Sprintf("%.0f GB/s", c.TotalDRAMGBps()))
	t.AddRow("DRAM latency", fmt.Sprintf("%d ns", c.DRAMLatency))
	t.AddRow("CTA scheduler", c.Scheduler.String())
	t.AddRow("Page placement", c.Placement.String())
	return t
}

// Table4 renders the memory-intensive workload registry with the paper's
// footprints and the model's scaled footprints.
func Table4() *Table {
	t := report.New("Table 4: Memory-intensive workloads",
		"Benchmark", "Pattern", "Paper footprint (MB)", "Model footprint (MB)", "CTAs", "Kernel iters")
	for _, s := range workload.MIntensive() {
		t.AddRowF(s.Name, s.Pattern.String(), s.PaperFootprintMB, s.ModelFootprintMB(), s.CTAs, s.KernelIters)
	}
	t.Note = "model footprints are scaled to simulation budgets; locality structure is preserved"
	return t
}

// AnalyticTable renders the Section 3.3.1 closed-form link sizing model.
func AnalyticTable() *Table {
	m := PaperAnalyticExample()
	t := report.New("Section 3.3.1: analytic inter-GPM bandwidth requirement",
		"Quantity", "Value")
	t.AddRow("GPMs", fmt.Sprint(m.Modules))
	t.AddRow("DRAM BW per partition (b)", fmt.Sprintf("%.0f GB/s", m.PartitionGBps))
	t.AddRow("Assumed L2 hit rate", fmt.Sprintf("%.0f%%", m.L2HitRate*100))
	t.AddRow("Delivered per partition", fmt.Sprintf("%.0f GB/s (2b)", m.DeliveredPerPartitionGBps()))
	t.AddRow("Total inter-GPM traffic (uniform)", fmt.Sprintf("%.0f GB/s", m.TotalInterGPMGBps()))
	t.AddRow("Required link bandwidth", fmt.Sprintf("%.0f GB/s (4b)", m.RequiredLinkGBps()))
	for _, l := range []float64{6144, 3072, 1536, 768, 384} {
		t.AddRow(fmt.Sprintf("Estimated throughput at %.0f GB/s links", l),
			fmt.Sprintf("%.0f%%", m.Slowdown(l)*100))
	}
	t.Note = "paper: links below 3 TB/s degrade performance; above it, no additional benefit"
	return t
}

// Fig2 regenerates Figure 2: hypothetical monolithic GPU scaling from 32 to
// 256 SMs with the memory system scaled proportionally, reported as speedup
// over the 32-SM GPU for high-parallelism and limited-parallelism
// application groups against linear scaling.
func Fig2(o Options) (*Table, error) {
	suite := o.suite()
	sms := []int{32, 64, 96, 128, 160, 192, 224, 256}
	base, err := o.runSuite(config.MustMonolithic(32), suite)
	if err != nil {
		return nil, err
	}
	t := report.New("Figure 2: GPU performance scaling with SM count (speedup over 32 SMs)",
		"SMs", "Linear", "High-parallelism apps", "Limited-parallelism apps")
	high := append(byCategory(suite, MemoryIntensive), byCategory(suite, ComputeIntensive)...)
	lim := byCategory(suite, LimitedParallelism)
	for _, n := range sms {
		var rs resultSet
		if n == 32 {
			rs = base
		} else {
			rs, err = o.runSuite(config.MustMonolithic(n), suite)
			if err != nil {
				return nil, err
			}
		}
		t.AddRowF(n, float64(n)/32,
			report.Cell(geomeanSpeedup(base, rs, high)),
			report.Cell(geomeanSpeedup(base, rs, lim)))
	}
	t.Note = "paper: high-parallelism apps reach 87.8% of linear at 256 SMs; limited apps plateau"
	return t, nil
}

// Fig4 regenerates Figure 4: performance sensitivity of the 256-SM MCM-GPU
// to inter-GPM link bandwidth, relative to an abundant 6 TB/s setting.
func Fig4(o Options) (*Table, error) {
	suite := o.suite()
	ref, err := o.runSuite(config.MCMWithLink(6144), suite)
	if err != nil {
		return nil, err
	}
	t := report.New("Figure 4: relative performance vs inter-GPM link bandwidth (1.0 = 6 TB/s)",
		"Link BW", "M-Intensive", "C-Intensive", "Lim-Parallel")
	mInt := byCategory(suite, MemoryIntensive)
	cInt := byCategory(suite, ComputeIntensive)
	lim := byCategory(suite, LimitedParallelism)
	for _, l := range []float64{6144, 3072, 1536, 768, 384} {
		var rs resultSet
		if l == 6144 {
			rs = ref
		} else {
			rs, err = o.runSuite(config.MCMWithLink(l), suite)
			if err != nil {
				return nil, err
			}
		}
		t.AddRowF(fmt.Sprintf("%.0f GB/s", l),
			report.Cell(geomeanSpeedup(ref, rs, mInt)),
			report.Cell(geomeanSpeedup(ref, rs, cInt)),
			report.Cell(geomeanSpeedup(ref, rs, lim)))
	}
	t.Note = "paper: M-intensive degrade 12%/40%/57% at 1.5TB/s / 768GB/s / 384GB/s"
	return t, nil
}

// fig6Configs returns the L1.5 design-space points of Figure 6.
func fig6Configs() []*Config {
	base := config.BaselineMCM()
	var out []*Config
	for _, size := range []int{8, 16, 32} {
		for _, pol := range []config.AllocPolicy{config.AllocAll, config.AllocRemoteOnly} {
			c := config.WithL15(base, size*config.MB, pol)
			c.Name = fmt.Sprintf("%dMB %s L1.5", size, pol)
			out = append(out, c)
		}
	}
	return out
}

// Fig6 regenerates Figure 6: speedup over the baseline MCM-GPU for L1.5
// capacities of 8/16/32 MB with allocate-all and remote-only policies, per
// memory-intensive application plus category geomeans.
func Fig6(o Options) (*Table, error) {
	suite := o.suite()
	base, err := o.runSuite(config.BaselineMCM(), suite)
	if err != nil {
		return nil, err
	}
	cfgs := fig6Configs()
	results := make([]resultSet, len(cfgs))
	for i, c := range cfgs {
		if results[i], err = o.runSuite(c, suite); err != nil {
			return nil, err
		}
	}
	headers := []string{"Workload"}
	for _, c := range cfgs {
		headers = append(headers, c.Name)
	}
	t := report.New("Figure 6: L1.5 design space, speedup over baseline MCM-GPU", headers...)
	for _, s := range o.mIntensive() {
		row := []interface{}{s.Name}
		for i := range cfgs {
			row = append(row, speedupCell(base, results[i], s.Name))
		}
		t.AddRowF(row...)
	}
	for _, cat := range []workload.Category{MemoryIntensive, ComputeIntensive, LimitedParallelism} {
		row := []interface{}{cat.String() + " geomean"}
		for i := range cfgs {
			row = append(row, report.Cell(geomeanSpeedup(base, results[i], byCategory(suite, cat))))
		}
		t.AddRowF(row...)
	}
	t.Note = "paper: 16MB remote-only is best iso-transistor (11.4% on M-intensive)"
	return t, nil
}

// Fig7 regenerates Figure 7: total inter-GPM bandwidth with and without the
// 16 MB remote-only L1.5 cache.
func Fig7(o Options) (*Table, error) {
	return interGPMTable(o,
		"Figure 7: inter-GPM bandwidth (GB/s), baseline vs 16MB remote-only L1.5",
		"paper: 28% average inter-GPM bandwidth reduction from the L1.5",
		namedConfig("16MB remote-only L1.5", l15Only16()))
}

// Fig9 regenerates Figure 9: speedup from distributed CTA scheduling
// combined with the 16 MB remote-only L1.5, over the baseline MCM-GPU.
func Fig9(o Options) (*Table, error) {
	return speedupTable(o,
		"Figure 9: speedup with distributed scheduling + 16MB remote-only L1.5",
		"paper: +23.4% / +1.9% / +5.2% on M-/C-intensive / limited-parallelism",
		namedConfig("L1.5+DS", l15DS16()))
}

// Fig10 regenerates Figure 10: inter-GPM bandwidth reduction from
// distributed scheduling on top of the L1.5.
func Fig10(o Options) (*Table, error) {
	return interGPMTable(o,
		"Figure 10: inter-GPM bandwidth (GB/s), baseline vs L1.5 + distributed scheduling",
		"paper: 33% average inter-GPM bandwidth reduction",
		namedConfig("16MB RO L1.5 + DS", l15DS16()))
}

// Fig13 regenerates Figure 13: performance with first-touch placement added
// (the full optimized design), for the 16 MB and 8 MB L1.5/L2 splits.
func Fig13(o Options) (*Table, error) {
	return speedupTable(o,
		"Figure 13: speedup with first-touch placement (full optimization)",
		"paper: 8MB split wins under FT: +51%/+11.3%/+7.9% by category",
		namedConfig("16MB RO L1.5+DS+FT", config.OptimizedMCM16()),
		namedConfig("8MB RO L1.5+DS+FT", config.OptimizedMCM()))
}

// Fig14 regenerates Figure 14: inter-GPM bandwidth with first-touch
// placement; the paper reports a 5x average reduction vs the baseline.
func Fig14(o Options) (*Table, error) {
	return interGPMTable(o,
		"Figure 14: inter-GPM bandwidth (GB/s) with first-touch placement",
		"paper: 5x average inter-GPM bandwidth reduction vs baseline MCM-GPU",
		namedConfig("16MB RO L1.5+DS+FT", config.OptimizedMCM16()),
		namedConfig("8MB RO L1.5+DS+FT", config.OptimizedMCM()))
}

// Fig15 regenerates Figure 15: the s-curve of optimized-MCM-GPU speedup over
// the baseline MCM-GPU across all 48 workloads, sorted ascending.
func Fig15(o Options) (*Table, error) {
	suite := o.suite()
	base, err := o.runSuite(config.BaselineMCM(), suite)
	if err != nil {
		return nil, err
	}
	opt, err := o.runSuite(config.OptimizedMCM(), suite)
	if err != nil {
		return nil, err
	}
	type entry struct {
		name string
		s    float64
	}
	var es []entry
	skipped := 0
	for _, s := range suite {
		b, ok1 := base[s.Name]
		r, ok2 := opt[s.Name]
		if !ok1 || !ok2 {
			skipped++
			continue
		}
		es = append(es, entry{s.Name, r.SpeedupOver(b)})
	}
	sort.Slice(es, func(i, j int) bool { return es[i].s < es[j].s })
	t := report.New("Figure 15: optimized MCM-GPU speedup s-curve (sorted)", "Rank", "Workload", "Speedup")
	improved, degraded := 0, 0
	for i, e := range es {
		t.AddRowF(i+1, e.name, e.s)
		switch {
		case e.s > 1.005:
			improved++
		case e.s < 0.995:
			degraded++
		}
	}
	t.Note = fmt.Sprintf("%d improved, %d degraded; paper: 31 improved, 9 degraded", improved, degraded)
	if skipped > 0 {
		t.Note += fmt.Sprintf(" (%d workloads skipped: failed runs)", skipped)
	}
	return t, nil
}

// Fig16 regenerates Figure 16: each optimization applied alone and combined,
// compared against the unbuildable 6 TB/s MCM-GPU and 256-SM monolithic,
// as average speedup over the baseline MCM-GPU.
func Fig16(o Options) (*Table, error) {
	suite := o.suite()
	base, err := o.runSuite(config.BaselineMCM(), suite)
	if err != nil {
		return nil, err
	}
	systems := []namedCfg{
		namedConfig("Remote-only L1.5 alone", l15Only16()),
		namedConfig("Distributed scheduling alone", config.WithScheduler(config.BaselineMCM(), config.SchedDistributed)),
		namedConfig("First touch alone", config.WithPlacement(config.BaselineMCM(), config.PlaceFirstTouch)),
		namedConfig("MCM-GPU optimized (768 GB/s)", config.OptimizedMCM()),
		namedConfig("MCM-GPU (6 TB/s, unbuildable)", config.MCMWithLink(6144)),
		namedConfig("Monolithic 256 SM (unbuildable)", config.UnbuildableMonolithic()),
	}
	t := report.New("Figure 16: optimization breakdown, geomean speedup over baseline MCM-GPU (%)",
		"System", "Speedup (%)")
	for _, nc := range systems {
		rs, err := o.runSuite(nc.cfg, suite)
		if err != nil {
			return nil, err
		}
		if g, gerr := geomeanSpeedup(base, rs, suite); gerr != nil {
			t.AddRowF(nc.name, report.ErrCell)
		} else {
			t.AddRowF(nc.name, (g-1)*100)
		}
	}
	t.Note = "paper: L1.5 alone +5.2%, DS alone ~0%, FT alone -4.7%, combined +22.8%"
	return t, nil
}

// Fig17 regenerates Figure 17: the MCM-GPU against a two-GPU board-level
// system with the same total SMs and DRAM bandwidth.
func Fig17(o Options) (*Table, error) {
	suite := o.suite()
	base, err := o.runSuite(config.MultiGPUBaseline(), suite)
	if err != nil {
		return nil, err
	}
	systems := []namedCfg{
		namedConfig("Baseline multi-GPU", config.MultiGPUBaseline()),
		namedConfig("Optimized multi-GPU", config.MultiGPUOptimized()),
		namedConfig("MCM-GPU (768 GB/s)", config.OptimizedMCM()),
		namedConfig("MCM-GPU (6 TB/s, unbuildable)", config.MCMWithLink(6144)),
		namedConfig("Monolithic 256 SM (unbuildable)", config.UnbuildableMonolithic()),
	}
	t := report.New("Figure 17: MCM-GPU vs multi-GPU, geomean speedup over baseline multi-GPU",
		"System", "Speedup")
	for _, nc := range systems {
		var rs resultSet
		if nc.name == "Baseline multi-GPU" {
			rs = base
		} else if rs, err = o.runSuite(nc.cfg, suite); err != nil {
			return nil, err
		}
		t.AddRowF(nc.name, report.Cell(geomeanSpeedup(base, rs, suite)))
	}
	t.Note = "paper: optimized multi-GPU +25.1%, MCM-GPU +51.9% over baseline multi-GPU"
	return t, nil
}

// GPMScale is an extension beyond the paper: hold the 256-SM, 3 TB/s,
// 16 MB-budget machine constant and vary how many GPMs it is partitioned
// into (2–16). Smaller GPMs are cheaper to manufacture (the paper's yield
// argument) but expose more NUMA surface; rings stop scaling past 4 modules
// so the larger counts use a 2D mesh. The table reports performance
// relative to the unbuildable 256-SM monolithic die.
func GPMScale(o Options) (*Table, error) {
	suite := o.suite()
	mono, err := o.runSuite(config.UnbuildableMonolithic(), suite)
	if err != nil {
		return nil, err
	}
	t := report.New("Extension: GPM-count scaling at constant aggregate resources",
		"GPMs", "SMs/GPM", "Topology", "Perf vs monolithic-256", "Mean inter-GPM GB/s")
	for _, gpms := range []int{2, 4, 8, 16} {
		cfg := config.MustMCMGPMs(gpms)
		rs, err := o.runSuite(cfg, suite)
		if err != nil {
			return nil, err
		}
		t.AddRowF(gpms, 256/gpms, cfg.Topology.String(),
			report.Cell(geomeanSpeedup(mono, rs, suite)), meanInterGPM(rs, suite))
	}
	t.Note = "extension experiment; the paper evaluates only the 4-GPM point and notes topology exploration as out of scope"
	return t, nil
}

// EnergyTable quantifies Section 6.2's efficiency argument: data-movement
// energy per system, using the Table 2 per-bit costs. The MCM-GPU replaces
// 10 pJ/b board traffic with 0.5 pJ/b on-package traffic, and its locality
// optimizations then remove most of that too.
func EnergyTable(o Options) (*Table, error) {
	suite := o.suite()
	systems := []namedCfg{
		namedConfig("Baseline MCM-GPU", config.BaselineMCM()),
		namedConfig("Optimized MCM-GPU", config.OptimizedMCM()),
		namedConfig("Optimized multi-GPU", config.MultiGPUOptimized()),
		namedConfig("Monolithic 256 SM (unbuildable)", config.UnbuildableMonolithic()),
	}
	t := report.New("Section 6.2: data-movement energy (mJ, summed over the suite)",
		"System", "Chip", "Package", "Board", "DRAM", "Total", "Link pJ/byte moved")
	for _, nc := range systems {
		rs, err := o.runSuite(nc.cfg, suite)
		if err != nil {
			return nil, err
		}
		var chip, pkg, board, dram, total float64
		var linkBytes uint64
		for _, r := range rs {
			chip += r.EnergyPJ.Chip
			pkg += r.EnergyPJ.Package
			board += r.EnergyPJ.Board
			dram += r.EnergyPJ.DRAM
			total += r.EnergyPJ.Total
			linkBytes += r.InterModuleBytes
		}
		perByte := 0.0
		if linkBytes > 0 {
			perByte = (pkg + board) / float64(linkBytes)
		}
		t.AddRowF(nc.name, chip/1e9, pkg/1e9, board/1e9, dram/1e9, total/1e9, perByte)
	}
	t.Note = "Table 2 energies: chip 0.08, package 0.5, board 10 pJ/bit; lower total at equal work is better"
	return t, nil
}

// Headline computes the abstract's five headline comparisons.
func Headline(o Options) (*Table, error) {
	suite := o.suite()
	cfgs := map[string]*Config{
		"base":     config.BaselineMCM(),
		"opt":      config.OptimizedMCM(),
		"mono128":  config.LargestBuildableMonolithic(),
		"mono256":  config.UnbuildableMonolithic(),
		"multiOpt": config.MultiGPUOptimized(),
	}
	rs := map[string]resultSet{}
	for k, c := range cfgs {
		var err error
		if rs[k], err = o.runSuite(c, suite); err != nil {
			return nil, err
		}
	}
	t := report.New("Headline results (geomean across all workloads)", "Metric", "Measured", "Paper")
	pct := func(g float64, err error) string {
		if err != nil {
			return report.ErrCell
		}
		return fmt.Sprintf("+%.1f%%", (g-1)*100)
	}
	gap := func(g float64, err error) string {
		if err != nil {
			return report.ErrCell
		}
		return fmt.Sprintf("%.1f%%", (1-g)*100)
	}
	t.AddRowF("Optimized vs baseline MCM-GPU",
		pct(geomeanSpeedup(rs["base"], rs["opt"], suite)), "+22.8%")
	bwBase := meanInterGPM(rs["base"], suite)
	bwOpt := meanInterGPM(rs["opt"], suite)
	ratio := 0.0
	if bwOpt > 0 {
		ratio = bwBase / bwOpt
	}
	t.AddRowF("Inter-GPM bandwidth reduction", fmt.Sprintf("%.1fx", ratio), "5x")
	t.AddRowF("Optimized MCM vs largest buildable monolithic (128 SM)",
		pct(geomeanSpeedup(rs["mono128"], rs["opt"], suite)), "+45.5%")
	t.AddRowF("Gap to unbuildable 256-SM monolithic",
		gap(geomeanSpeedup(rs["mono256"], rs["opt"], suite)), "<10%")
	t.AddRowF("Optimized MCM vs equally equipped multi-GPU",
		pct(geomeanSpeedup(rs["multiOpt"], rs["opt"], suite)), "+26.8%")
	return t, nil
}

// --- shared helpers for the per-app figure families ---

type namedCfg struct {
	name string
	cfg  *Config
}

func namedConfig(name string, cfg *Config) namedCfg {
	c := cfg.Clone()
	c.Name = name
	return namedCfg{name: name, cfg: c}
}

// l15Only16 is the 16 MB remote-only L1.5 on the otherwise-baseline MCM.
func l15Only16() *Config {
	return config.WithL15(config.BaselineMCM(), 16*config.MB, config.AllocRemoteOnly)
}

// l15DS16 adds distributed scheduling to l15Only16.
func l15DS16() *Config {
	c := l15Only16()
	c.Scheduler = config.SchedDistributed
	return c
}

// speedupTable runs base + the given systems and reports per-M-intensive-app
// speedups plus category geomeans.
func speedupTable(o Options, title, note string, systems ...namedCfg) (*Table, error) {
	suite := o.suite()
	base, err := o.runSuite(config.BaselineMCM(), suite)
	if err != nil {
		return nil, err
	}
	results := make([]resultSet, len(systems))
	for i, nc := range systems {
		if results[i], err = o.runSuite(nc.cfg, suite); err != nil {
			return nil, err
		}
	}
	headers := []string{"Workload"}
	for _, nc := range systems {
		headers = append(headers, nc.name)
	}
	t := report.New(title, headers...)
	for _, s := range o.mIntensive() {
		row := []interface{}{s.Name}
		for i := range systems {
			row = append(row, speedupCell(base, results[i], s.Name))
		}
		t.AddRowF(row...)
	}
	for _, cat := range []workload.Category{MemoryIntensive, ComputeIntensive, LimitedParallelism} {
		row := []interface{}{cat.String() + " geomean"}
		for i := range systems {
			row = append(row, report.Cell(geomeanSpeedup(base, results[i], byCategory(suite, cat))))
		}
		t.AddRowF(row...)
	}
	t.Note = note
	return t, nil
}

// interGPMTable runs base + the given systems and reports per-app and
// per-category inter-GPM bandwidth.
func interGPMTable(o Options, title, note string, systems ...namedCfg) (*Table, error) {
	suite := o.suite()
	base, err := o.runSuite(config.BaselineMCM(), suite)
	if err != nil {
		return nil, err
	}
	results := make([]resultSet, len(systems))
	for i, nc := range systems {
		if results[i], err = o.runSuite(nc.cfg, suite); err != nil {
			return nil, err
		}
	}
	headers := []string{"Workload", "Baseline MCM-GPU"}
	for _, nc := range systems {
		headers = append(headers, nc.name)
	}
	t := report.New(title, headers...)
	for _, s := range o.mIntensive() {
		row := []interface{}{s.Name, gbpsCell(base, s.Name)}
		for i := range systems {
			row = append(row, gbpsCell(results[i], s.Name))
		}
		t.AddRowF(row...)
	}
	for _, cat := range []workload.Category{MemoryIntensive, ComputeIntensive, LimitedParallelism} {
		specs := byCategory(suite, cat)
		row := []interface{}{cat.String() + " mean", meanInterGPM(base, specs)}
		for i := range systems {
			row = append(row, meanInterGPM(results[i], specs))
		}
		t.AddRowF(row...)
	}
	t.Note = note
	return t, nil
}

// tiledRegionMCM is the optimized MCM re-paired for dense 2-D workloads: the
// tiled 2-D CTA scheduler plus region-aware placement on the same transistor
// budget as DS+FT (8 MB L2 halves + 8 MB remote-only L1.5).
func tiledRegionMCM() *Config { return config.TiledRegionMCM() }

// Tension is the extension study behind the dense workload families: the
// paper's optimized design (distributed scheduling + first-touch, Figure 16)
// wins on the 48-application suite but loses to the centralized/interleave
// baseline on tiled GEMM and flash attention, whose 2-D panel reuse
// first-touch placement breaks — the linear init sweep binds panel pages to
// modules that match neither the panels' consumers nor the chunk owners,
// while the skewed k-loop defeats the remote-only L1.5 and the halved L2
// thrashes on the panel working set. Pairing the tiled 2-D scheduler with
// region-aware placement restores the 2-D locality and recovers the loss
// without giving back the suite win.
//
// Suite rows run at o.Scale like every other experiment. The dense rows
// always run full size: the tension is a cache-capacity effect (panel
// windows against the halved L2), and scaling the footprint down dissolves
// exactly the effect under study. Dense runs are single-digit seconds.
func Tension(o Options) (*Table, error) {
	suite := o.suite()
	systems := []namedCfg{
		namedConfig("DS+FT (optimized)", config.OptimizedMCM()),
		namedConfig("Tiled2D+region-aware", tiledRegionMCM()),
	}
	base, err := o.runSuite(config.BaselineMCM(), suite)
	if err != nil {
		return nil, err
	}
	results := make([]resultSet, len(systems))
	for i, nc := range systems {
		if results[i], err = o.runSuite(nc.cfg, suite); err != nil {
			return nil, err
		}
	}

	full := o
	full.Scale = 1
	dense := workload.Dense()
	dBase, err := full.runSuite(config.BaselineMCM(), dense)
	if err != nil {
		return nil, err
	}
	dResults := make([]resultSet, len(systems))
	for i, nc := range systems {
		if dResults[i], err = full.runSuite(nc.cfg, dense); err != nil {
			return nil, err
		}
	}

	t := report.New("Extension: scheduler/placement tension on dense 2-D workloads",
		"Workload", "Baseline MCM-GPU", "DS+FT (optimized)", "Tiled2D+region-aware")
	for _, cat := range []workload.Category{MemoryIntensive, ComputeIntensive, LimitedParallelism} {
		row := []interface{}{cat.String() + " geomean (suite)", 1.0}
		for i := range systems {
			row = append(row, report.Cell(geomeanSpeedup(base, results[i], byCategory(suite, cat))))
		}
		t.AddRowF(row...)
	}
	row := []interface{}{"Suite geomean (48 apps)", 1.0}
	for i := range systems {
		row = append(row, report.Cell(geomeanSpeedup(base, results[i], suite)))
	}
	t.AddRowF(row...)
	for _, s := range dense {
		row := []interface{}{s.Name + " (full size)", 1.0}
		for i := range systems {
			row = append(row, speedupCell(dBase, dResults[i], s.Name))
		}
		t.AddRowF(row...)
		row = []interface{}{s.Name + " inter-GPM GB/s", gbpsCell(dBase, s.Name)}
		for i := range systems {
			row = append(row, gbpsCell(dResults[i], s.Name))
		}
		t.AddRowF(row...)
	}
	t.Note = "speedup over baseline MCM-GPU; suite rows at -scale, dense rows always full size"
	return t, nil
}

// Experiments maps experiment IDs to their drivers, for the CLI and tests.
// Static tables are wrapped lazily: building the map (e.g. to list IDs) does
// no table construction; a driver builds its table only when invoked.
func Experiments() map[string]func(Options) (*Table, error) {
	static := func(build func() *Table) func(Options) (*Table, error) {
		return func(Options) (*Table, error) { return build(), nil }
	}
	return map[string]func(Options) (*Table, error){
		"table1":   static(Table1),
		"table2":   static(Table2),
		"table3":   static(Table3),
		"table4":   static(Table4),
		"analytic": static(AnalyticTable),
		"fig2":     Fig2,
		"fig4":     Fig4,
		"fig6":     Fig6,
		"fig7":     Fig7,
		"fig9":     Fig9,
		"fig10":    Fig10,
		"fig13":    Fig13,
		"fig14":    Fig14,
		"fig15":    Fig15,
		"fig16":    Fig16,
		"fig17":    Fig17,
		"headline": Headline,
		"tension":  Tension,
		"gpmscale": GPMScale,
		"energy":   EnergyTable,
	}
}
