package mcmgpu

import (
	"fmt"
	"strings"
	"testing"
)

// quick returns options that keep facade tests fast: one workload per
// category at a tenth of the full size.
func quick() Options {
	return Options{Scale: 0.1, MaxPerCategory: 1}
}

func TestRunBaseline(t *testing.T) {
	res, err := RunScaled(BaselineMCM(), MustWorkload("CFD"), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.MemOps == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.Config != "mcm-baseline" || res.Workload != "CFD" {
		t.Fatalf("identity wrong: %s/%s", res.Config, res.Workload)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := BaselineMCM()
	cfg.Modules = -1
	if _, err := Run(cfg, MustWorkload("CFD")); err == nil {
		t.Fatalf("bad config accepted")
	}
}

func TestMustWorkloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustWorkload(unknown) did not panic")
		}
	}()
	MustWorkload("not-a-workload")
}

func TestWorkloadAccessors(t *testing.T) {
	if got := len(Workloads()); got != 48 {
		t.Errorf("Workloads = %d, want 48", got)
	}
	if got := len(MIntensiveWorkloads()); got != 17 {
		t.Errorf("MIntensive = %d, want 17", got)
	}
	if got := len(CIntensiveWorkloads()); got != 16 {
		t.Errorf("CIntensive = %d, want 16", got)
	}
	if got := len(LimitedWorkloads()); got != 15 {
		t.Errorf("Limited = %d, want 15", got)
	}
	if _, err := WorkloadByName("Stream"); err != nil {
		t.Errorf("WorkloadByName(Stream): %v", err)
	}
}

func TestOptimizedBeatsBaselineOnStencil(t *testing.T) {
	spec := MustWorkload("CoMD")
	base, err := RunScaled(BaselineMCM(), spec, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := RunScaled(OptimizedMCM(), spec, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if s := Speedup(base, opt); s < 1.2 {
		t.Errorf("optimized speedup on CoMD = %.2f, want > 1.2 (paper: up to 3.5x)", s)
	}
	if opt.InterModuleBytes >= base.InterModuleBytes {
		t.Errorf("optimizations did not reduce inter-GPM traffic: %d vs %d",
			opt.InterModuleBytes, base.InterModuleBytes)
	}
}

func TestAnalyticExample(t *testing.T) {
	m := PaperAnalyticExample()
	if m.RequiredLinkGBps() != 3072 {
		t.Fatalf("analytic requirement = %v, want 3072", m.RequiredLinkGBps())
	}
}

func TestEstimateScaledFacade(t *testing.T) {
	cfg := OptimizedMCM()
	spec := MustWorkload("GEMM")
	est, err := EstimateScaled(cfg, spec, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if est.IPC <= 0 || est.Cycles <= 0 {
		t.Fatalf("degenerate estimate: %+v", est)
	}
	// The one-shot form matches a reused Estimator.
	e, err := NewEstimator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := e.Estimate(spec, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if *again != *est {
		t.Fatalf("one-shot and reused estimator disagree:\n%+v\n%+v", est, again)
	}
	if _, err := EstimateScaled(&Config{}, spec, 0.05); err == nil {
		t.Fatal("zero config: want error")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.scale() != 1 {
		t.Errorf("zero Options scale = %v, want 1", o.scale())
	}
	if got := len(o.suite()); got != 48 {
		t.Errorf("zero Options suite = %d, want 48", got)
	}
	o = Options{MaxPerCategory: 2}
	if got := len(o.suite()); got != 6 {
		t.Errorf("MaxPerCategory=2 suite = %d, want 6", got)
	}
	if got := len(o.mIntensive()); got != 2 {
		t.Errorf("mIntensive trim = %d, want 2", got)
	}
}

func TestStaticTables(t *testing.T) {
	for name, tbl := range map[string]*Table{
		"table1":   Table1(),
		"table2":   Table2(),
		"table3":   Table3(),
		"table4":   Table4(),
		"analytic": AnalyticTable(),
	} {
		if len(tbl.Rows) == 0 {
			t.Errorf("%s has no rows", name)
		}
		if tbl.String() == "" {
			t.Errorf("%s renders empty", name)
		}
	}
	// Table 3 must advertise the Table 3 parameters.
	t3 := Table3().String()
	for _, want := range []string{"256", "3072", "768", "64"} {
		if !strings.Contains(t3, want) {
			t.Errorf("table3 missing %q:\n%s", want, t3)
		}
	}
	// Table 4 carries all 17 workloads.
	if got := len(Table4().Rows); got != 17 {
		t.Errorf("table4 rows = %d, want 17", got)
	}
}

func TestExperimentsRegistryComplete(t *testing.T) {
	drivers := Experiments()
	want := []string{
		"table1", "table2", "table3", "table4", "analytic",
		"fig2", "fig4", "fig6", "fig7", "fig9", "fig10",
		"fig13", "fig14", "fig15", "fig16", "fig17", "headline",
		"gpmscale", "energy", "tension",
	}
	for _, id := range want {
		if _, ok := drivers[id]; !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(drivers) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(drivers), len(want))
	}
}

func TestFig4ShapeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	tbl, err := Fig4(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("fig4 rows = %d, want 5 link settings", len(tbl.Rows))
	}
	// Column 1 is M-intensive relative performance; must be nonincreasing
	// as links shrink and equal 1.0 at 6 TB/s.
	prev := 2.0
	for i, row := range tbl.Rows {
		v := parseF(t, row[1])
		if i == 0 && v != 1 {
			t.Errorf("fig4 first row = %v, want 1.0 (self-relative)", v)
		}
		if v > prev+0.02 {
			t.Errorf("fig4 M-intensive not monotone at row %d: %v after %v", i, v, prev)
		}
		prev = v
	}
	// The 384 GB/s point must show substantial degradation.
	if last := parseF(t, tbl.Rows[4][1]); last > 0.85 {
		t.Errorf("fig4 at 384 GB/s = %v, want visible degradation", last)
	}
}

func TestFig15Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	tbl, err := Fig15(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("fig15 rows = %d, want 3 (one per category at MaxPerCategory=1)", len(tbl.Rows))
	}
	// Sorted ascending.
	prev := 0.0
	for _, row := range tbl.Rows {
		v := parseF(t, row[2])
		if v < prev {
			t.Errorf("fig15 s-curve not sorted: %v after %v", v, prev)
		}
		prev = v
	}
}

func TestHeadlineQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	tbl, err := Headline(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("headline rows = %d, want 5", len(tbl.Rows))
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscan(s, &v); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}
