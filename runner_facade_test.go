package mcmgpu

import (
	"testing"
)

// simulationExperiments is every registry entry that actually simulates
// (the static tables are trivially deterministic).
var simulationExperiments = []string{
	"fig2", "fig4", "fig6", "fig7", "fig9", "fig10",
	"fig13", "fig14", "fig15", "fig16", "fig17",
	"headline", "gpmscale", "energy",
}

// TestExperimentsDeterministicAcrossWorkers is the acceptance contract of
// the parallel runner: every experiment renders byte-identical tables with
// Workers=1 and Workers=8. Both passes bypass the run cache so the parallel
// pass really re-simulates rather than replaying memoized results.
func TestExperimentsDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	drivers := Experiments()
	seq := quick()
	seq.Workers = 1
	seq.NoCache = true
	par := quick()
	par.Workers = 8
	par.NoCache = true
	for _, id := range simulationExperiments {
		id := id
		t.Run(id, func(t *testing.T) {
			want, err := drivers[id](seq)
			if err != nil {
				t.Fatal(err)
			}
			got, err := drivers[id](par)
			if err != nil {
				t.Fatal(err)
			}
			if want.String() != got.String() {
				t.Errorf("parallel table differs from sequential:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
					want.String(), got.String())
			}
		})
	}
}

// TestRunCacheSharedAcrossExperiments asserts the process-wide memoization
// contract: drivers that revisit the baseline MCM suite reuse it instead of
// re-simulating, and running the same experiment twice performs zero new
// simulations.
func TestRunCacheSharedAcrossExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	ResetRunCache()
	defer ResetRunCache()
	o := quick()
	n := uint64(len(o.suite()))

	// Fig7 simulates the baseline suite plus one L1.5 system.
	if _, err := Fig7(o); err != nil {
		t.Fatal(err)
	}
	s := RunCacheStats()
	if s.Simulations() != 2*n {
		t.Fatalf("after fig7: %d simulations, want %d (baseline + L1.5 suites)", s.Simulations(), 2*n)
	}

	// Fig9 adds one new system; its baseline suite must come from the cache.
	if _, err := Fig9(o); err != nil {
		t.Fatal(err)
	}
	s = RunCacheStats()
	if s.Simulations() != 3*n {
		t.Fatalf("after fig9: %d simulations, want %d (baseline reused)", s.Simulations(), 3*n)
	}
	if s.Hits < n {
		t.Fatalf("after fig9: %d hits, want >= %d (the shared baseline suite)", s.Hits, n)
	}

	// Re-running an experiment simulates nothing.
	before := RunCacheStats().Simulations()
	tbl1, err := Fig9(o)
	if err != nil {
		t.Fatal(err)
	}
	if got := RunCacheStats().Simulations(); got != before {
		t.Fatalf("repeat fig9 simulated %d new jobs, want 0", got-before)
	}
	// And the memoized rerun renders identically.
	tbl2, err := Fig9(o)
	if err != nil {
		t.Fatal(err)
	}
	if tbl1.String() != tbl2.String() {
		t.Fatal("memoized rerun rendered a different table")
	}
}
