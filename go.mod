module mcmgpu

go 1.22
