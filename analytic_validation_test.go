package mcmgpu

import (
	"fmt"
	"math"
	"testing"

	"mcmgpu/internal/analytic"
	"mcmgpu/internal/config"
	"mcmgpu/internal/core"
	"mcmgpu/internal/stats"
	"mcmgpu/internal/workload"
)

// This file is the contract between the closed-form estimator
// (internal/analytic.Estimator) and the event engine: every config family
// the experiments sweep, cross-checked metric by metric at the golden scale,
// under explicit error budgets and a rank-correlation budget on
// speedup-ordering families. CI runs it on every push; loosening a budget is
// a reviewable diff here, not a silent drift.

// valScale matches goldenOptions so the engine reference runs share the
// process-wide memo cache with the golden regression in the same test
// process: the expensive side of the comparison is mostly free.
const valScale = 0.05

// valWorkloads mirrors MaxPerCategory=1: the first application of each
// category, the same trio every golden experiment table reduces to.
func valWorkloads() []*workload.Spec {
	return []*workload.Spec{
		workload.MIntensive()[0], // NN-Conv
		workload.CIntensive()[0], // SP
		workload.Limited()[0],    // DWT
	}
}

// valFamily is one experiment-shaped sweep: a set of configs whose engine
// speedup ordering the estimator must reproduce (rank budget) in addition
// to the per-metric error budgets.
type valFamily struct {
	name    string
	configs []*config.Config
	// ranked enables the Spearman budget: families with a meaningful
	// monotone knob (link bandwidth, cache size, system generation).
	ranked bool
	// specs/scale override the default valWorkloads()/valScale cells.
	// The tension family needs both: its subject is the dense 2-D
	// workloads, and their scheduler/placement tension is a full-size
	// cache-capacity effect that valScale would dissolve.
	specs []*workload.Spec
	scale float64
}

func (f valFamily) workloads() []*workload.Spec {
	if f.specs != nil {
		return f.specs
	}
	return valWorkloads()
}

func (f valFamily) atScale() float64 {
	if f.scale > 0 {
		return f.scale
	}
	return valScale
}

func valFamilies() []valFamily {
	links := []float64{384, 768, 1536, 3072, 6144}
	var linkCfgs []*config.Config
	for _, l := range links {
		linkCfgs = append(linkCfgs, config.MCMWithLink(l))
	}
	l15Cfgs := []*config.Config{
		config.BaselineMCM(),
		config.WithL15(config.BaselineMCM(), 8*config.MB, config.AllocRemoteOnly),
		config.WithL15(config.BaselineMCM(), 16*config.MB, config.AllocRemoteOnly),
		config.WithL15(config.BaselineMCM(), 16*config.MB, config.AllocAll),
	}
	fig16 := []*config.Config{
		config.BaselineMCM(),
		config.WithScheduler(config.BaselineMCM(), config.SchedDistributed),
		config.WithPlacement(config.WithScheduler(config.BaselineMCM(), config.SchedDistributed), config.PlaceFirstTouch),
		config.OptimizedMCM16(),
	}
	gpms := []*config.Config{
		config.MustMCMGPMs(2),
		config.MustMCMGPMs(4),
		config.MustMCMGPMs(8),
	}
	monos := []*config.Config{
		config.MustMonolithic(64),
		config.MustMonolithic(128),
		config.MustMonolithic(256),
	}
	multi := []*config.Config{
		config.MultiGPUBaseline(),
		config.MultiGPUOptimized(),
	}
	tension := []*config.Config{
		config.BaselineMCM(),
		config.OptimizedMCM(),
		tiledRegionMCM(),
	}
	return []valFamily{
		{name: "link", configs: linkCfgs, ranked: true},
		{name: "l15", configs: l15Cfgs, ranked: true},
		{name: "fig16", configs: fig16, ranked: true},
		// gpm carries the metric budgets but not the rank budget: its engine
		// ordering at golden scale is set by effects outside a closed form's
		// reach — NN-Conv is issue-bound with perfect latency hiding (IPC
		// flat to 0.1% while the L1 hit rate swings 0.16..0.54), and the
		// SP/DWT drops at higher module counts come from latency-queueing
		// dynamics, not from any bandwidth or working-set balance.
		{name: "gpm", configs: gpms},
		{name: "mono", configs: monos, ranked: true},
		{name: "multigpu", configs: multi},
		// The scheduler/placement tension study: both dense 2-D workloads
		// at full size across baseline, DS+FT, and Tiled2D+region-aware.
		// Ranked: the estimator must order the policy tradeoff the way the
		// engine does (tiled > baseline > DS+FT on GEMM), since the
		// two-phase sweeps prune on exactly that ordering.
		{name: "tension", configs: tension, ranked: true,
			specs: workload.Dense(), scale: 1},
	}
}

// valBudgets are the CI-enforced error budgets, per metric. Rates are
// absolute error (they live in [0,1]); throughput and traffic metrics are
// relative error, judged on the per-family geometric mean so a single
// outlier cell cannot hide systematic drift — and the worst cell is bounded
// separately.
const (
	budgetIPCGeo     = 0.35 // geomean multiplicative IPC error per family
	budgetIPCWorst   = 2.6  // worst-cell multiplicative IPC error
	budgetRateAbs    = 0.30 // worst-cell |Δ| on L1/L2 hit rate, local fraction
	budgetTrafficGeo = 0.60 // geomean multiplicative error, wire + DRAM bytes
	budgetSpearman   = 0.90 // per (ranked family, workload) rank correlation
)

type valCell struct {
	family string
	cfg    *config.Config
	spec   *workload.Spec
	res    *core.Result
	est    *analytic.Estimate
}

// runValidation simulates and estimates every (family, config, workload)
// cell. Engine runs go through the shared memo cache at golden scale.
func runValidation(t *testing.T) []valCell {
	t.Helper()
	var cells []valCell
	for _, fam := range valFamilies() {
		specs := fam.workloads()
		opt := Options{Scale: fam.atScale(), Workers: 4, Audit: true}
		for _, cfg := range fam.configs {
			rs, err := opt.runSuite(cfg, specs)
			if err != nil {
				t.Fatalf("%s/%s: engine: %v", fam.name, cfg.Name, err)
			}
			e, err := analytic.NewEstimator(cfg)
			if err != nil {
				t.Fatalf("%s/%s: estimator: %v", fam.name, cfg.Name, err)
			}
			for _, s := range specs {
				est, err := e.Estimate(s, fam.atScale())
				if err != nil {
					t.Fatalf("%s/%s/%s: estimate: %v", fam.name, cfg.Name, s.Name, err)
				}
				cells = append(cells, valCell{fam.name, cfg, s, rs[s.Name], est})
			}
		}
	}
	return cells
}

// ratioErr returns the multiplicative error of est vs ref: max(r, 1/r) - 1,
// symmetric in over- and under-prediction.
func ratioErr(est, ref float64) float64 {
	if ref <= 0 || est <= 0 {
		if ref == est {
			return 0
		}
		return math.Inf(1)
	}
	r := est / ref
	if r < 1 {
		r = 1 / r
	}
	return r - 1
}

func TestAnalyticValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("validation simulates every config family; skipped in -short")
	}
	cells := runValidation(t)

	// Per-cell dump (visible with -v) and worst-cell budgets.
	type famKey struct{ family, workload string }
	ipcErrs := map[string][]float64{}     // family -> multiplicative IPC errors
	trafficErrs := map[string][]float64{} // family -> wire/DRAM byte errors
	engIPC := map[famKey][]float64{}
	estIPC := map[famKey][]float64{}
	for _, c := range cells {
		eIPC := ratioErr(c.est.IPC, c.res.IPC())
		ipcErrs[c.family] = append(ipcErrs[c.family], eIPC)
		if c.res.InterModuleBytes > 0 && c.est.InterModuleBytes > 0 {
			trafficErrs[c.family] = append(trafficErrs[c.family],
				ratioErr(c.est.InterModuleBytes, float64(c.res.InterModuleBytes)))
		}
		trafficErrs[c.family] = append(trafficErrs[c.family],
			ratioErr(c.est.DRAMBytes, float64(c.res.DRAMBytes)))
		k := famKey{c.family, c.spec.Name}
		engIPC[k] = append(engIPC[k], c.res.IPC())
		estIPC[k] = append(estIPC[k], c.est.IPC)

		t.Logf("%-8s %-28s %-6s ipc %6.2f/%6.2f  l1 %.2f/%.2f  l2 %.2f/%.2f  loc %.2f/%.2f  wire %.2e/%.2e  dram %.2e/%.2e  [%s]",
			c.family, c.cfg.Name, c.spec.Name,
			c.est.IPC, c.res.IPC(),
			c.est.L1HitRate, c.res.L1HitRate,
			c.est.L2HitRate, c.res.L2HitRate,
			c.est.LocalFraction, c.res.LocalFraction,
			c.est.InterModuleBytes, float64(c.res.InterModuleBytes),
			c.est.DRAMBytes, float64(c.res.DRAMBytes),
			c.est.Bottleneck)

		if eIPC > budgetIPCWorst {
			t.Errorf("%s/%s/%s: IPC error %.2f exceeds worst-cell budget %.2f (est %.2f, engine %.2f)",
				c.family, c.cfg.Name, c.spec.Name, eIPC, budgetIPCWorst, c.est.IPC, c.res.IPC())
		}
		for _, m := range []struct {
			name     string
			est, ref float64
		}{
			{"L1HitRate", c.est.L1HitRate, c.res.L1HitRate},
			{"L2HitRate", c.est.L2HitRate, c.res.L2HitRate},
			{"LocalFraction", c.est.LocalFraction, c.res.LocalFraction},
		} {
			if d := math.Abs(m.est - m.ref); d > budgetRateAbs {
				t.Errorf("%s/%s/%s: %s |Δ| = %.2f exceeds budget %.2f (est %.2f, engine %.2f)",
					c.family, c.cfg.Name, c.spec.Name, m.name, d, budgetRateAbs, m.est, m.ref)
			}
		}
	}

	// Geomean budgets per family.
	geo := func(errs []float64) float64 {
		var s float64
		for _, e := range errs {
			s += math.Log1p(e)
		}
		return math.Expm1(s / float64(len(errs)))
	}
	for fam, errs := range ipcErrs {
		if g := geo(errs); g > budgetIPCGeo {
			t.Errorf("family %s: geomean IPC error %.2f exceeds budget %.2f", fam, g, budgetIPCGeo)
		} else {
			t.Logf("family %-8s geomean IPC error %.2f (budget %.2f)", fam, g, budgetIPCGeo)
		}
	}
	for fam, errs := range trafficErrs {
		if g := geo(errs); g > budgetTrafficGeo {
			t.Errorf("family %s: geomean traffic error %.2f exceeds budget %.2f", fam, g, budgetTrafficGeo)
		}
	}

	// Rank budget: each ranked family is one speedup-ordering table — per
	// workload, IPC normalized by the family's first config (the table's
	// baseline column), then all of the table's cells ranked together.
	// The estimator must reproduce the engine's ordering of that table:
	// Spearman >= budget on the pooled speedups. Speedups are quantized to
	// 2% buckets (the engine's cell-to-cell noise floor at golden scale)
	// on both sides, so statistically indistinguishable cells tie instead
	// of demanding a coin-flip ordering; a table the engine leaves
	// entirely within one bucket would be knob-insensitive and is skipped.
	for _, fam := range valFamilies() {
		if !fam.ranked {
			continue
		}
		var eng, est []float64
		for _, w := range fam.workloads() {
			k := famKey{fam.name, w.Name}
			if len(engIPC[k]) < 2 || engIPC[k][0] <= 0 || estIPC[k][0] <= 0 {
				continue
			}
			for i := range engIPC[k] {
				eng = append(eng, engIPC[k][i]/engIPC[k][0])
				est = append(est, estIPC[k][i]/estIPC[k][0])
			}
		}
		engQ := quantizeLog(eng, rankQuantum)
		estQ := quantizeLog(est, rankQuantum)
		if allEqual(engQ) {
			t.Logf("family %s: rank skipped (engine speedups flat within %.0f%%)", fam.name, rankQuantum*100)
			continue
		}
		rho, err := stats.Spearman(estQ, engQ)
		if err != nil {
			t.Errorf("family %s: engine orders the table but estimator is flat: %v\n  est speedups %v\n  eng speedups %v",
				fam.name, err, fmtF(est), fmtF(eng))
			continue
		}
		if rho < budgetSpearman {
			t.Errorf("family %s: Spearman %.2f below budget %.2f\n  est speedups %v\n  eng speedups %v",
				fam.name, rho, budgetSpearman, fmtF(est), fmtF(eng))
		} else {
			t.Logf("family %-8s Spearman %.3f over %d cells", fam.name, rho, len(eng))
		}
	}
}

// rankQuantum is the relative resolution of the rank comparison: cells
// whose IPC differs by less than this are treated as tied.
const rankQuantum = 0.02

// quantizeLog buckets values multiplicatively: equal buckets = tied ranks.
func quantizeLog(xs []float64, q float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if x > 0 {
			out[i] = math.Round(math.Log(x) / math.Log1p(q))
		}
	}
	return out
}

func allEqual(xs []float64) bool {
	for _, x := range xs[1:] {
		if x != xs[0] {
			return false
		}
	}
	return true
}

func fmtF(xs []float64) string {
	s := "["
	for i, x := range xs {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.2f", x)
	}
	return s + "]"
}
