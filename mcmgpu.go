// Package mcmgpu is a simulator for Multi-Chip-Module GPUs, reproducing
// "MCM-GPU: Multi-Chip-Module GPUs for Continued Performance Scalability"
// (Arunkumar et al., ISCA 2017).
//
// The package lets you build the paper's systems — the 4-GPM MCM-GPU with
// its locality optimizations (GPM-side L1.5 cache, distributed CTA
// scheduling, first-touch page placement), monolithic GPUs from 32 to 256
// SMs, and the two-GPU board-level system — and run the paper's 48
// synthetic workloads on them:
//
//	res, err := mcmgpu.Run(mcmgpu.OptimizedMCM(), mcmgpu.MustWorkload("Stream"))
//
// Experiment drivers regenerate every table and figure of the paper's
// evaluation; see Experiments and cmd/experiments.
package mcmgpu

import (
	"errors"

	"mcmgpu/internal/analytic"
	"mcmgpu/internal/audit"
	"mcmgpu/internal/config"
	"mcmgpu/internal/core"
	"mcmgpu/internal/faultinject"
	"mcmgpu/internal/report"
	"mcmgpu/internal/runner"
	"mcmgpu/internal/runstore"
	"mcmgpu/internal/workload"
)

// Re-exported model types. The aliases make the internal packages' types
// part of the public API without duplicating them.
type (
	// Config describes one simulated GPU system.
	Config = config.Config
	// Result summarizes one workload execution.
	Result = core.Result
	// Spec describes one synthetic workload.
	Spec = workload.Spec
	// Table is a renderable experiment result.
	Table = report.Table
	// AnalyticModel is the Section 3.3.1 closed-form bandwidth model.
	AnalyticModel = analytic.Model
	// Estimate is one closed-form performance prediction: cycles, IPC,
	// per-level hit rates, inter-module traffic and DRAM demand for a
	// (config, workload) pair — the fast path cmd/sweep scores grids with.
	Estimate = analytic.Estimate
	// Estimator evaluates Estimates against one configuration; build with
	// NewEstimator.
	Estimator = analytic.Estimator
	// RunOptions bounds one run: context, event/cycle budgets, wall
	// deadline, fault plan. The zero value imposes no limits.
	RunOptions = core.RunOptions
	// SimError reports a run terminated by a budget, deadline, or
	// cancellation, with a diagnosis snapshot of the machine.
	SimError = core.SimError
	// JobError is one failed simulation job (its key plus the cause).
	JobError = runner.JobError
	// JobErrors aggregates every failed job of a batch.
	JobErrors = runner.JobErrors
	// FaultPlan is a deterministic fault-injection plan (tests, CI smoke).
	FaultPlan = faultinject.Plan
	// Violation is one broken simulation invariant found by the auditor
	// (see Options.Audit); reach it with errors.As through any run error.
	Violation = audit.Violation
	// Violations aggregates every violation one audit pass found.
	Violations = audit.Violations
	// MetricsOptions arms per-job time-series sampling on experiment
	// drivers and the batch runner (see Options.Metrics).
	MetricsOptions = runner.MetricsOptions
	// RunStore is the durable on-disk, content-addressed result store (see
	// Options.Store and OpenRunStore). Every blob is SHA-256 verified on
	// read; damage degrades to recompute, never to a wrong answer.
	RunStore = runstore.Store
	// RunStoreStats snapshots store effectiveness and health counters.
	RunStoreStats = runstore.Stats
)

// Workload categories, re-exported.
const (
	MemoryIntensive    = workload.MemoryIntensive
	ComputeIntensive   = workload.ComputeIntensive
	LimitedParallelism = workload.LimitedParallelism
)

// Policy constants, re-exported for building custom configurations.
const (
	SchedCentralized = config.SchedCentralized
	SchedDistributed = config.SchedDistributed
	SchedTiled2D     = config.SchedTiled2D
	PlaceInterleave  = config.PlaceInterleave
	PlaceFirstTouch  = config.PlaceFirstTouch
	PlaceRegionAware = config.PlaceRegionAware
	AllocAll         = config.AllocAll
	AllocRemoteOnly  = config.AllocRemoteOnly
)

// Byte-size helpers, re-exported.
const (
	KB = config.KB
	MB = config.MB
)

// WithL15 returns a copy of a config with a module-side L1.5 cache of the
// given total capacity and allocation policy, iso-transistor rebalanced
// against the 16 MB L2 budget (Section 5.1.2).
var WithL15 = config.WithL15

// System presets (see internal/config for parameter provenance).
var (
	// BaselineMCM is the Table 3 baseline 4-GPM MCM-GPU.
	BaselineMCM = config.BaselineMCM
	// OptimizedMCM adds the remote-only L1.5, distributed CTA scheduling
	// and first-touch placement (the paper's proposed design).
	OptimizedMCM = config.OptimizedMCM
	// OptimizedMCM16 is the optimized design with the 16 MB L1.5 split.
	OptimizedMCM16 = config.OptimizedMCM16
	// TiledRegionMCM is the optimized transistor budget re-paired for
	// dense 2-D workloads: tiled 2-D scheduling + region-aware placement.
	TiledRegionMCM = config.TiledRegionMCM
	// MCMWithLink is the baseline with a custom inter-GPM link bandwidth.
	MCMWithLink = config.MCMWithLink
	// Monolithic is a single-die GPU with the given SM count; counts that
	// are not positive multiples of 32 return an error.
	Monolithic = config.Monolithic
	// MustMonolithic is Monolithic for known-good literal SM counts.
	MustMonolithic = config.MustMonolithic
	// LargestBuildableMonolithic is the 128-SM buildability limit.
	LargestBuildableMonolithic = config.LargestBuildableMonolithic
	// UnbuildableMonolithic is the hypothetical 256-SM single die.
	UnbuildableMonolithic = config.UnbuildableMonolithic
	// MultiGPUBaseline is the Section 6 two-GPU board-level system.
	MultiGPUBaseline = config.MultiGPUBaseline
	// MultiGPUOptimized adds GPU-side remote caching to it.
	MultiGPUOptimized = config.MultiGPUOptimized
)

// Workload accessors, re-exported.
var (
	// Workloads returns all 48 applications.
	Workloads = workload.Suite
	// WorkloadByName looks up one application.
	WorkloadByName = workload.ByName
	// MIntensiveWorkloads returns the 17 Table 4 applications.
	MIntensiveWorkloads = workload.MIntensive
	// CIntensiveWorkloads returns the 16 compute-intensive applications.
	CIntensiveWorkloads = workload.CIntensive
	// LimitedWorkloads returns the 15 limited-parallelism applications.
	LimitedWorkloads = workload.Limited
	// DenseWorkloads returns the dense-linear-algebra extension pair
	// (tiled GEMM, flash attention) kept outside the 48-app suite.
	DenseWorkloads = workload.Dense
)

// MustWorkload returns the named workload or panics; convenient in examples
// and tests where the name is a literal.
func MustWorkload(name string) *Spec {
	s, err := workload.ByName(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Run executes one workload on a fresh machine built from cfg.
func Run(cfg *Config, spec *Spec) (*Result, error) {
	return RunWith(cfg, spec, RunOptions{})
}

// RunWith executes one workload on a fresh machine built from cfg, bounded
// by opts: the run additionally terminates with a *SimError when an event or
// cycle budget is exhausted, the wall deadline passes, or the context is
// canceled. The zero RunOptions is exactly Run.
func RunWith(cfg *Config, spec *Spec, opts RunOptions) (*Result, error) {
	m, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return m.RunWith(spec, opts)
}

// RunScaled is Run with the workload's per-warp work and footprint scaled
// by scale (1 = full size). Scaling trades fidelity for simulation speed
// while preserving parallelism and locality structure.
func RunScaled(cfg *Config, spec *Spec, scale float64) (*Result, error) {
	if scale != 1 {
		spec = spec.Scaled(scale)
	}
	return Run(cfg, spec)
}

// Speedup returns how much faster "sys" runs a workload than "base"
// (>1 means sys is faster).
func Speedup(base, sys *Result) float64 {
	return sys.SpeedupOver(base)
}

// PaperAnalyticExample returns the Section 3.3.1 example model.
func PaperAnalyticExample() AnalyticModel { return analytic.PaperExample() }

// NewEstimator builds the closed-form performance estimator for cfg. The
// estimator is pure and safe for concurrent use; it predicts in
// microseconds what RunScaled measures in seconds, within the error and
// rank budgets TestAnalyticValidation enforces.
var NewEstimator = analytic.NewEstimator

// EstimateScaled predicts one workload's performance on cfg at the given
// scale without running the event engine — the one-shot form of
// NewEstimator for callers that do not amortize estimator construction.
func EstimateScaled(cfg *Config, spec *Spec, scale float64) (*Estimate, error) {
	e, err := analytic.NewEstimator(cfg)
	if err != nil {
		return nil, err
	}
	return e.Estimate(spec, scale)
}

// CacheStats reports run-cache effectiveness; see RunCacheStats.
type CacheStats = runner.Stats

// RunCacheStats returns a snapshot of the process-wide run cache: hits,
// misses (= simulations actually executed) and distinct entries held.
func RunCacheStats() CacheStats { return runner.Shared().Stats() }

// ResetRunCache discards all memoized results and zeroes the counters.
// Mainly useful in tests and long-lived processes that change the workload
// registry.
func ResetRunCache() { runner.Shared().Reset() }

// OpenRunStore opens (creating if needed) the durable run store rooted at
// dir and arms any store-family fault plan from MCMGPU_FAULT on it (a
// malformed plan is ignored here; the CLIs reject it before opening the
// store). Warnings — quarantined files, degraded reads — are reported
// through warnf when non-nil. The handle is safe for concurrent use and
// can back any number of Options values.
func OpenRunStore(dir string, warnf func(format string, args ...interface{})) (*RunStore, error) {
	plan, _ := faultinject.FromEnv()
	opts := []runstore.Option{runstore.WithFault(plan)}
	if warnf != nil {
		opts = append(opts, runstore.WithLogf(warnf))
	}
	return runstore.Open(dir, opts...)
}

// resultSet caches per-workload results for one system configuration.
type resultSet map[string]*core.Result

// runner builds the executor an Options value asks for: o.Workers-wide
// parallelism over the process-wide memo cache unless o.NoCache opts out,
// bounded by the Options budgets, in fail-fast or collect-errors mode per
// o.KeepGoing.
func (o Options) runner() *runner.Runner {
	r := &runner.Runner{
		Workers:  o.Workers,
		FailFast: !o.KeepGoing,
		Limits: RunOptions{
			MaxEvents:    o.MaxEvents,
			MaxCycles:    o.MaxCycles,
			WallDeadline: o.Deadline,
			Audit:        o.Audit,
		},
		Fault:   o.Fault,
		Metrics: o.Metrics,
		Store:   o.Store,
	}
	if !o.NoCache {
		r.Cache = runner.Shared()
	}
	return r
}

// runSuite executes the given workloads on cfg, returning results by
// workload name. Jobs fan out across o.Workers goroutines; because each
// Machine is deterministic and results are assembled by job index, the
// output is identical for any worker count.
//
// In KeepGoing mode failed jobs are reported through Warnf and simply left
// out of the returned set — drivers render the holes as ERR cells. In
// fail-fast mode (the default) the first failure aborts the experiment.
// Either way, results whose engine had to clamp scheduled-in-the-past
// events are surfaced as warnings: a non-zero ClampedEvents count that
// grows with the event count means a causality bug is hiding behind the
// clamp.
func (o Options) runSuite(cfg *Config, specs []*Spec) (resultSet, error) {
	out, err := o.runner().RunSuite(cfg, specs, o.scale())
	if err != nil {
		if !o.KeepGoing {
			return nil, err
		}
		var jerrs JobErrors
		if errors.As(err, &jerrs) {
			for _, je := range jerrs {
				o.warnf("cell failed: %v", je)
			}
		} else {
			return nil, err
		}
	}
	for _, s := range specs {
		if r, ok := out[s.Name]; ok && r.ClampedEvents > 0 {
			o.warnf("clamped events: %s on %s clamped %d event(s) to the current cycle",
				s.Name, cfg.Name, r.ClampedEvents)
		}
	}
	return resultSet(out), nil
}
