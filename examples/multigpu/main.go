// Multigpu: the Section 6 comparison. Build a 256-SM GPU three ways — two
// discrete GPUs on a board, four GPMs on a package, one impossible die —
// and run a bandwidth-hungry workload and an irregular workload on each.
// Package-level integration wins because its links are ~6x faster and 20x
// more energy efficient per bit than board-level links (Table 2).
//
//	go run ./examples/multigpu
package main

import (
	"fmt"
	"log"

	"mcmgpu"
)

func main() {
	systems := []struct {
		name string
		cfg  *mcmgpu.Config
	}{
		{"multi-GPU (baseline)", mcmgpu.MultiGPUBaseline()},
		{"multi-GPU (optimized)", mcmgpu.MultiGPUOptimized()},
		{"MCM-GPU (optimized)", mcmgpu.OptimizedMCM()},
		{"monolithic 256 SM (unbuildable)", mcmgpu.UnbuildableMonolithic()},
	}

	for _, app := range []string{"MiniAMR", "BFS"} {
		spec := mcmgpu.MustWorkload(app)
		fmt.Printf("workload %s (%s, %s)\n", spec.Name, spec.Category, spec.Pattern)
		var base *mcmgpu.Result
		fmt.Printf("  %-33s %9s %9s %14s %14s\n", "system", "cycles", "speedup", "off-die traffic", "link energy")
		for _, s := range systems {
			res, err := mcmgpu.Run(s.cfg, spec)
			if err != nil {
				log.Fatal(err)
			}
			if base == nil {
				base = res
			}
			linkPJ := res.EnergyPJ.Package + res.EnergyPJ.Board
			fmt.Printf("  %-33s %9d %8.2fx %11.0f GB/s %11.2f mJ\n",
				s.name, res.Cycles, mcmgpu.Speedup(base, res),
				res.InterModuleGBps, linkPJ/1e9)
		}
		fmt.Println()
	}
	fmt.Println("the MCM-GPU outperforms the equally equipped multi-GPU because the")
	fmt.Println("on-package GRS links cost 0.5 pJ/bit instead of 10 pJ/bit on a board,")
	fmt.Println("and supply several times the bandwidth at lower latency.")
}
