// Locality: dissect the paper's three NUMA optimizations on one stencil
// workload (CoMD-like molecular dynamics). Each mechanism is applied alone
// and then combined, showing the synergy Figure 16 reports: the L1.5 helps
// a little by itself, distributed scheduling and first-touch placement do
// little alone, and together they eliminate most inter-GPM traffic.
//
//	go run ./examples/locality
package main

import (
	"fmt"
	"log"

	"mcmgpu"
)

func main() {
	spec := mcmgpu.MustWorkload("CoMD")

	l15 := mcmgpu.WithL15(mcmgpu.BaselineMCM(), 16*mcmgpu.MB, mcmgpu.AllocRemoteOnly)

	ds := mcmgpu.BaselineMCM()
	ds.Scheduler = mcmgpu.SchedDistributed

	ft := mcmgpu.BaselineMCM()
	ft.Placement = mcmgpu.PlaceFirstTouch

	systems := []struct {
		name string
		cfg  *mcmgpu.Config
	}{
		{"baseline MCM-GPU", mcmgpu.BaselineMCM()},
		{"+ remote-only L1.5 alone", l15},
		{"+ distributed sched alone", ds},
		{"+ first touch alone", ft},
		{"all three (optimized)", mcmgpu.OptimizedMCM()},
	}

	var base *mcmgpu.Result
	fmt.Printf("%-28s %9s %9s %12s %8s\n", "system", "cycles", "speedup", "interGPM", "local")
	for _, s := range systems {
		res, err := mcmgpu.Run(s.cfg, spec)
		if err != nil {
			log.Fatal(err)
		}
		if base == nil {
			base = res
		}
		fmt.Printf("%-28s %9d %8.2fx %9.0fGB/s %7.0f%%\n",
			s.name, res.Cycles, mcmgpu.Speedup(base, res),
			res.InterModuleGBps, res.LocalFraction*100)
	}
	fmt.Println("\nthe mechanisms compose: distributed scheduling keeps neighbor CTAs on")
	fmt.Println("one GPM, first touch pins their pages there, and the L1.5 absorbs the rest.")
}
