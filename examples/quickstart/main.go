// Quickstart: build the paper's two headline systems, run one workload on
// each, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mcmgpu"
)

func main() {
	// Pick a memory-intensive workload from the paper's Table 4 suite.
	stream := mcmgpu.MustWorkload("Stream")

	// The Table 3 baseline: 4 GPMs x 64 SMs, 3 TB/s DRAM, 768 GB/s ring,
	// centralized CTA scheduling, fine-grain interleaved pages.
	baseline, err := mcmgpu.Run(mcmgpu.BaselineMCM(), stream)
	if err != nil {
		log.Fatal(err)
	}

	// The proposed design: remote-only GPM-side L1.5 cache, distributed CTA
	// scheduling, first-touch page placement.
	optimized, err := mcmgpu.Run(mcmgpu.OptimizedMCM(), stream)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("baseline :", baseline)
	fmt.Println("optimized:", optimized)
	fmt.Printf("speedup: %.2fx\n", mcmgpu.Speedup(baseline, optimized))
	if optimized.InterModuleGBps > 0 {
		fmt.Printf("inter-GPM traffic: %.0f -> %.0f GB/s (%.1fx reduction)\n",
			baseline.InterModuleGBps, optimized.InterModuleGBps,
			baseline.InterModuleGBps/optimized.InterModuleGBps)
	} else {
		fmt.Printf("inter-GPM traffic: %.0f GB/s -> ~0 (fully localized)\n",
			baseline.InterModuleGBps)
	}
	fmt.Printf("locality: %.0f%% -> %.0f%% of post-L1 accesses homed locally\n",
		baseline.LocalFraction*100, optimized.LocalFraction*100)
}
