// Scaling: reproduce the motivation of the paper's Figure 2 for one
// application of each kind — a hypothetical monolithic GPU scaled from 32
// to 256 SMs with its memory system grown proportionally. High-parallelism
// applications keep scaling; limited-parallelism ones plateau, which is why
// the paper targets bigger *logical* GPUs rather than more GPUs.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	"mcmgpu"
)

func main() {
	apps := []string{"MiniAMR", "GEMM", "DWT"} // M-intensive, C-intensive, limited
	sms := []int{32, 64, 128, 192, 256}

	fmt.Printf("%-8s", "SMs")
	for _, a := range apps {
		fmt.Printf("  %12s", a)
	}
	fmt.Println("  (speedup over 32 SMs)")

	base := map[string]uint64{}
	for _, n := range sms {
		fmt.Printf("%-8d", n)
		for _, a := range apps {
			spec := mcmgpu.MustWorkload(a)
			res, err := mcmgpu.RunScaled(mcmgpu.MustMonolithic(n), spec, 0.5)
			if err != nil {
				log.Fatal(err)
			}
			if n == sms[0] {
				base[a] = res.Cycles
			}
			fmt.Printf("  %11.2fx", float64(base[a])/float64(res.Cycles))
		}
		fmt.Println()
	}
	fmt.Println("\nnote: GPUs beyond 128 SMs are not manufacturable on a single die;")
	fmt.Println("the MCM-GPU reaches these SM counts with four 64-SM GPMs on a package.")
}
